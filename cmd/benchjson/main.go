// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for archiving as a CI artifact, so the performance
// trajectory of the sweep engine is tracked per PR:
//
//	go test -run xxx -bench 'BenchmarkSweep' -benchtime=3x -count=3 . | benchjson -out BENCH_sweep.json
//	benchjson -in bench.txt -out BENCH_sweep.json
//
// Repeated samples of one benchmark (from -count) are grouped under a
// single entry with min/mean ns-per-op summaries.
//
// The -diff mode compares two such artifacts — the CI regression gate
// downloads the base branch's artifact and fails the build when any
// benchmark's mean ns/op regressed by more than -threshold percent:
//
//	benchjson -diff BENCH_base.json -head BENCH_sweep.json -threshold 20
//
// Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks must not brick their own introduction PR).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sample is one benchmark result line.
type Sample struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Benchmark groups the samples of one benchmark name.
type Benchmark struct {
	Name      string   `json:"name"`
	Procs     int      `json:"procs,omitempty"`
	Samples   []Sample `json:"samples"`
	MinNsOp   float64  `json:"min_ns_per_op"`
	MeanNsOp  float64  `json:"mean_ns_per_op"`
	SampleLen int      `json:"sample_count"`

	// MeanAllocsOp is the mean allocs/op across samples, present only
	// when the run used -benchmem or b.ReportAllocs. The diff gate
	// guards it like ns/op, so allocation-discipline wins (the sweep
	// path's O(1) allocs per job) cannot silently regress.
	MeanAllocsOp float64 `json:"mean_allocs_per_op,omitempty"`
}

// Report is the artifact document.
type Report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func main() {
	inPath := flag.String("in", "", "benchmark text output (default: stdin)")
	outPath := flag.String("out", "", "JSON artifact path (default: stdout)")
	diffPath := flag.String("diff", "", "baseline JSON artifact; switches to diff mode against -head")
	headPath := flag.String("head", "", "JSON artifact to compare against the -diff baseline")
	threshold := flag.Float64("threshold", 20, "diff mode: fail when mean ns/op regresses by more than this percent")
	flag.Parse()

	if *diffPath != "" {
		if *headPath == "" {
			fatal(fmt.Errorf("-diff needs -head, the artifact to compare against the baseline"))
		}
		base, err := readReport(*diffPath)
		if err != nil {
			fatal(err)
		}
		head, err := readReport(*headPath)
		if err != nil {
			fatal(err)
		}
		if Diff(os.Stdout, base, head, *threshold) {
			os.Exit(1)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// Parse reads `go test -bench` output and aggregates it per benchmark.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name, procs := splitProcs(fields[0])
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: bad iteration count: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: bad ns/op: %w", line, err)
		}
		s := Sample{Iterations: iters, NsPerOp: ns}
		// Optional -benchmem columns: "B/op" and "allocs/op".
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		b := byName[fields[0]]
		if b == nil {
			b = &Benchmark{Name: name, Procs: procs}
			byName[fields[0]] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Samples = append(b.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range rep.Benchmarks {
		min, sum, allocSum := b.Samples[0].NsPerOp, 0.0, 0.0
		for _, s := range b.Samples {
			if s.NsPerOp < min {
				min = s.NsPerOp
			}
			sum += s.NsPerOp
			allocSum += s.AllocsPerOp
		}
		b.MinNsOp = min
		b.MeanNsOp = sum / float64(len(b.Samples))
		b.MeanAllocsOp = allocSum / float64(len(b.Samples))
		b.SampleLen = len(b.Samples)
	}
	return rep, nil
}

// readReport decodes a JSON artifact previously written by this tool.
func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Diff compares mean ns/op — and, when both sides carry them, mean
// allocs/op — per benchmark between a baseline and a head artifact,
// writing one row per benchmark, and reports whether any benchmark
// regressed by more than threshold percent on either axis. Benchmarks
// present on only one side are listed but do not regress the gate.
func Diff(w io.Writer, base, head *Report, threshold float64) bool {
	baseline := map[string]*Benchmark{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Fprintf(w, "%-40s %14s %14s %9s %12s %12s %9s  %s\n",
		"benchmark", "base ns/op", "head ns/op", "delta",
		"base allocs", "head allocs", "adelta", "status")
	regressed := false
	for _, h := range head.Benchmarks {
		b, ok := baseline[h.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %9s %12s %12.0f %9s  new\n",
				h.Name, "-", h.MeanNsOp, "-", "-", h.MeanAllocsOp, "-")
			continue
		}
		delete(baseline, h.Name)
		if b.MeanNsOp <= 0 {
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %9s %12s %12s %9s  skipped (zero baseline)\n",
				h.Name, b.MeanNsOp, h.MeanNsOp, "-", "-", "-", "-")
			continue
		}
		pct := (h.MeanNsOp - b.MeanNsOp) / b.MeanNsOp * 100
		status := "ok"
		if pct > threshold {
			status = fmt.Sprintf("REGRESSED (> %+.0f%%)", threshold)
			regressed = true
		}
		// The allocs gate only engages when the baseline recorded
		// allocations (older artifacts predate the column).
		allocCols := fmt.Sprintf("%12s %12s %9s", "-", "-", "-")
		if b.MeanAllocsOp > 0 {
			apct := (h.MeanAllocsOp - b.MeanAllocsOp) / b.MeanAllocsOp * 100
			allocCols = fmt.Sprintf("%12.0f %12.0f %+8.1f%%", b.MeanAllocsOp, h.MeanAllocsOp, apct)
			if apct > threshold && status == "ok" {
				status = fmt.Sprintf("REGRESSED allocs (> %+.0f%%)", threshold)
				regressed = true
			}
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%% %s  %s\n", h.Name, b.MeanNsOp, h.MeanNsOp, pct, allocCols, status)
	}
	// Stable order for benchmarks that disappeared: follow the base
	// artifact's own ordering.
	for _, b := range base.Benchmarks {
		if _, gone := baseline[b.Name]; gone {
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s %12s %12s %9s  removed\n",
				b.Name, b.MeanNsOp, "-", "-", "-", "-", "-")
		}
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: at least one benchmark mean regressed by more than %g%%\n", threshold)
	}
	return regressed
}

// splitProcs separates the "-N" GOMAXPROCS suffix from a benchmark
// name; names without one (GOMAXPROCS=1 runs) pass through whole.
func splitProcs(full string) (string, int) {
	i := strings.LastIndexByte(full, '-')
	if i < 0 {
		return full, 0
	}
	n, err := strconv.Atoi(full[i+1:])
	if err != nil || n <= 0 {
		return full, 0
	}
	return full[:i], n
}

// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for archiving as a CI artifact, so the performance
// trajectory of the sweep engine is tracked per PR:
//
//	go test -run xxx -bench 'BenchmarkSweep' -benchtime=3x -count=3 . | benchjson -out BENCH_sweep.json
//	benchjson -in bench.txt -out BENCH_sweep.json
//
// Repeated samples of one benchmark (from -count) are grouped under a
// single entry with min/mean ns-per-op summaries, which makes
// regression diffs between artifacts a one-line jq comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Sample is one benchmark result line.
type Sample struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Benchmark groups the samples of one benchmark name.
type Benchmark struct {
	Name      string   `json:"name"`
	Procs     int      `json:"procs,omitempty"`
	Samples   []Sample `json:"samples"`
	MinNsOp   float64  `json:"min_ns_per_op"`
	MeanNsOp  float64  `json:"mean_ns_per_op"`
	SampleLen int      `json:"sample_count"`
}

// Report is the artifact document.
type Report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func main() {
	inPath := flag.String("in", "", "benchmark text output (default: stdin)")
	outPath := flag.String("out", "", "JSON artifact path (default: stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// Parse reads `go test -bench` output and aggregates it per benchmark.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]*Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name, procs := splitProcs(fields[0])
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: bad iteration count: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: bad ns/op: %w", line, err)
		}
		s := Sample{Iterations: iters, NsPerOp: ns}
		// Optional -benchmem columns: "B/op" and "allocs/op".
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		b := byName[fields[0]]
		if b == nil {
			b = &Benchmark{Name: name, Procs: procs}
			byName[fields[0]] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Samples = append(b.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, b := range rep.Benchmarks {
		min, sum := b.Samples[0].NsPerOp, 0.0
		for _, s := range b.Samples {
			if s.NsPerOp < min {
				min = s.NsPerOp
			}
			sum += s.NsPerOp
		}
		b.MinNsOp = min
		b.MeanNsOp = sum / float64(len(b.Samples))
		b.SampleLen = len(b.Samples)
	}
	return rep, nil
}

// splitProcs separates the "-N" GOMAXPROCS suffix from a benchmark
// name; names without one (GOMAXPROCS=1 runs) pass through whole.
func splitProcs(full string) (string, int) {
	i := strings.LastIndexByte(full, '-')
	if i < 0 {
		return full, 0
	}
	n, err := strconv.Atoi(full[i+1:])
	if err != nil || n <= 0 {
		return full, 0
	}
	return full[:i], n
}

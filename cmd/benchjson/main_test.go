package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: storagesched
cpu: AMD EPYC 7543 32-Core Processor
BenchmarkSweep_Serial-8   	       3	 123456789 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkSweep_Serial-8   	       3	 120000000 ns/op	 1234000 B/op	   12300 allocs/op
BenchmarkSweep_Parallel-8 	       3	  43210987.5 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkSweepBatch_n50-8 	       3	  99000000 ns/op
BenchmarkSweepSequential_n50-8 	   3	 180000000 ns/op
PASS
ok  	storagesched	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "storagesched" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "EPYC") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks, want 4", len(rep.Benchmarks))
	}

	serial := rep.Benchmarks[0]
	if serial.Name != "Sweep_Serial" || serial.Procs != 8 {
		t.Errorf("first benchmark = %q procs=%d", serial.Name, serial.Procs)
	}
	if serial.SampleLen != 2 || len(serial.Samples) != 2 {
		t.Fatalf("-count samples not grouped: %+v", serial)
	}
	if serial.MinNsOp != 120000000 {
		t.Errorf("min ns/op = %g", serial.MinNsOp)
	}
	if want := (123456789.0 + 120000000.0) / 2; serial.MeanNsOp != want {
		t.Errorf("mean ns/op = %g, want %g", serial.MeanNsOp, want)
	}
	if serial.Samples[0].BytesPerOp != 1234567 || serial.Samples[0].AllocsPerOp != 12345 {
		t.Errorf("benchmem columns not parsed: %+v", serial.Samples[0])
	}

	parallel := rep.Benchmarks[1]
	if parallel.Name != "Sweep_Parallel" || parallel.SampleLen != 1 {
		t.Errorf("unexpected second benchmark: %+v", parallel)
	}
	if parallel.Samples[0].NsPerOp != 43210987.5 {
		t.Errorf("fractional ns/op not parsed: %g", parallel.Samples[0].NsPerOp)
	}

	batch := rep.Benchmarks[2]
	if batch.Name != "SweepBatch_n50" || batch.Samples[0].BytesPerOp != 0 {
		t.Errorf("bench without -benchmem columns mis-parsed: %+v", batch)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok storagesched 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks parsed from non-benchmark output: %+v", rep.Benchmarks)
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-4 notanumber 12 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-4 3 notanumber ns/op\n")); err == nil {
		t.Error("bad ns/op accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkSweep_Serial-8", "BenchmarkSweep_Serial", 8},
		{"BenchmarkSweep_Serial", "BenchmarkSweep_Serial", 0},
		{"BenchmarkSweepBatch_n50-16", "BenchmarkSweepBatch_n50", 16},
		{"BenchmarkOdd-name", "BenchmarkOdd-name", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}

package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: storagesched
cpu: AMD EPYC 7543 32-Core Processor
BenchmarkSweep_Serial-8   	       3	 123456789 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkSweep_Serial-8   	       3	 120000000 ns/op	 1234000 B/op	   12300 allocs/op
BenchmarkSweep_Parallel-8 	       3	  43210987.5 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkSweepBatch_n50-8 	       3	  99000000 ns/op
BenchmarkSweepSequential_n50-8 	   3	 180000000 ns/op
PASS
ok  	storagesched	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "storagesched" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "EPYC") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks, want 4", len(rep.Benchmarks))
	}

	serial := rep.Benchmarks[0]
	if serial.Name != "Sweep_Serial" || serial.Procs != 8 {
		t.Errorf("first benchmark = %q procs=%d", serial.Name, serial.Procs)
	}
	if serial.SampleLen != 2 || len(serial.Samples) != 2 {
		t.Fatalf("-count samples not grouped: %+v", serial)
	}
	if serial.MinNsOp != 120000000 {
		t.Errorf("min ns/op = %g", serial.MinNsOp)
	}
	if want := (123456789.0 + 120000000.0) / 2; serial.MeanNsOp != want {
		t.Errorf("mean ns/op = %g, want %g", serial.MeanNsOp, want)
	}
	if serial.Samples[0].BytesPerOp != 1234567 || serial.Samples[0].AllocsPerOp != 12345 {
		t.Errorf("benchmem columns not parsed: %+v", serial.Samples[0])
	}
	if want := (12345.0 + 12300.0) / 2; serial.MeanAllocsOp != want {
		t.Errorf("mean allocs/op = %g, want %g", serial.MeanAllocsOp, want)
	}

	parallel := rep.Benchmarks[1]
	if parallel.Name != "Sweep_Parallel" || parallel.SampleLen != 1 {
		t.Errorf("unexpected second benchmark: %+v", parallel)
	}
	if parallel.Samples[0].NsPerOp != 43210987.5 {
		t.Errorf("fractional ns/op not parsed: %g", parallel.Samples[0].NsPerOp)
	}

	batch := rep.Benchmarks[2]
	if batch.Name != "SweepBatch_n50" || batch.Samples[0].BytesPerOp != 0 {
		t.Errorf("bench without -benchmem columns mis-parsed: %+v", batch)
	}
	if batch.MeanAllocsOp != 0 {
		t.Errorf("mean allocs/op without benchmem = %g, want 0", batch.MeanAllocsOp)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok storagesched 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks parsed from non-benchmark output: %+v", rep.Benchmarks)
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-4 notanumber 12 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-4 3 notanumber ns/op\n")); err == nil {
		t.Error("bad ns/op accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkSweep_Serial-8", "BenchmarkSweep_Serial", 8},
		{"BenchmarkSweep_Serial", "BenchmarkSweep_Serial", 0},
		{"BenchmarkSweepBatch_n50-16", "BenchmarkSweepBatch_n50", 16},
		{"BenchmarkOdd-name", "BenchmarkOdd-name", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}

func mkReport(names []string, means []float64) *Report {
	rep := &Report{}
	for i, name := range names {
		rep.Benchmarks = append(rep.Benchmarks, &Benchmark{
			Name:      name,
			Samples:   []Sample{{Iterations: 1, NsPerOp: means[i]}},
			MinNsOp:   means[i],
			MeanNsOp:  means[i],
			SampleLen: 1,
		})
	}
	return rep
}

func TestDiffDetectsRegression(t *testing.T) {
	base := mkReport([]string{"A", "B", "C"}, []float64{100, 100, 100})
	head := mkReport([]string{"A", "B", "C"}, []float64{119, 121, 80})
	var buf strings.Builder
	if regressed := Diff(&buf, base, head, 20); !regressed {
		t.Fatalf("21%% regression not flagged:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
		t.Errorf("missing regression markers:\n%s", out)
	}
	// A (+19%) and C (-20%) stay within the gate.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "A ") || strings.HasPrefix(line, "C ") {
			if strings.Contains(line, "REGRESSED") {
				t.Errorf("within-threshold row flagged: %q", line)
			}
		}
	}
}

func TestDiffCleanAndAsymmetric(t *testing.T) {
	base := mkReport([]string{"A", "Gone"}, []float64{100, 50})
	head := mkReport([]string{"A", "New"}, []float64{105, 999})
	var buf strings.Builder
	if regressed := Diff(&buf, base, head, 20); regressed {
		t.Fatalf("5%% drift flagged as regression:\n%s", buf.String())
	}
	out := buf.String()
	// New and removed benchmarks are reported but never fail the gate.
	if !strings.Contains(out, "new") || !strings.Contains(out, "removed") {
		t.Errorf("asymmetric benchmarks not reported:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("clean diff printed FAIL:\n%s", out)
	}
}

func mkReportAllocs(names []string, means, allocs []float64) *Report {
	rep := mkReport(names, means)
	for i, b := range rep.Benchmarks {
		b.Samples[0].AllocsPerOp = allocs[i]
		b.MeanAllocsOp = allocs[i]
	}
	return rep
}

func TestDiffDetectsAllocsRegression(t *testing.T) {
	// ns/op steady, allocs/op up 10x: the gate must trip on the allocs
	// axis alone — this is what guards the sweep path's O(1) allocs.
	base := mkReportAllocs([]string{"A", "B"}, []float64{100, 100}, []float64{20, 1000})
	head := mkReportAllocs([]string{"A", "B"}, []float64{101, 99}, []float64{200, 900})
	var buf strings.Builder
	if regressed := Diff(&buf, base, head, 20); !regressed {
		t.Fatalf("10x allocs regression not flagged:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSED allocs") {
		t.Errorf("allocs regression marker missing:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "B ") && strings.Contains(line, "REGRESSED") {
			t.Errorf("improved-allocs row flagged: %q", line)
		}
	}
}

func TestDiffAllocsGateSkipsLegacyBaseline(t *testing.T) {
	// A baseline artifact predating the allocs column (MeanAllocsOp 0)
	// must not trip the allocs gate whatever the head records.
	base := mkReport([]string{"A"}, []float64{100})
	head := mkReportAllocs([]string{"A"}, []float64{100}, []float64{5000})
	var buf strings.Builder
	if regressed := Diff(&buf, base, head, 20); regressed {
		t.Fatalf("legacy baseline tripped the allocs gate:\n%s", buf.String())
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := mkReport([]string{"A"}, []float64{0})
	head := mkReport([]string{"A"}, []float64{100})
	var buf strings.Builder
	if regressed := Diff(&buf, base, head, 20); regressed {
		t.Fatalf("zero baseline flagged as regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Errorf("zero baseline not reported as skipped:\n%s", buf.String())
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/bench.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) || got.Benchmarks[0].MeanNsOp != rep.Benchmarks[0].MeanNsOp {
		t.Errorf("round trip lost data: %+v", got.Benchmarks)
	}
	if _, err := readReport(dir + "/missing.json"); err == nil {
		t.Error("missing artifact accepted")
	}
}

// Command experiments regenerates every figure and quantitative claim
// of the paper (see DESIGN.md §4 for the index). With no flags it runs
// everything; -run selects experiments, -list shows the index.
//
//	experiments -list
//	experiments -run FIG1,FIG3
//	experiments            # run all; exit 1 on any claim violation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"storagesched/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list the experiment index and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	workers := flag.Int("workers", 0, "worker count for engine-backed sweeps (0 = one per CPU)")
	pending := flag.Int("pending", 0, "max in-flight instances for batch sweeps (0 = twice the workers)")
	flag.Parse()

	exp.SetSweepWorkers(*workers)
	exp.SetSweepPending(*pending)

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	if *run == "" {
		if err := exp.RunAll(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	failed := false
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		e, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("==== %s — %s ====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			failed = true
		} else {
			fmt.Println("claim check: OK")
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	sched "storagesched"
)

func TestRunParetoViz(t *testing.T) {
	in := sched.NewInstance(2, []sched.Time{4, 2, 2}, []sched.Mem{1, 4, 4})
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(path, 30); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 30); err == nil {
		t.Error("missing file accepted")
	}
}

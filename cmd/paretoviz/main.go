// Command paretoviz enumerates the exact Pareto front of a small
// instance (n ≤ 24) and renders each Pareto-optimal schedule — the
// tool behind Figures 1 and 2.
//
//	paretoviz -in instance.json
//	geninstance -family uniform -n 8 -m 2 | paretoviz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	sched "storagesched"
)

func main() {
	inPath := flag.String("in", "", "instance JSON file (default: stdin)")
	width := flag.Int("width", 48, "Gantt width in columns")
	flag.Parse()

	if err := run(*inPath, *width); err != nil {
		fmt.Fprintf(os.Stderr, "paretoviz: %v\n", err)
		os.Exit(1)
	}
}

func run(inPath string, width int) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	in, err := sched.ReadInstanceJSON(r)
	if err != nil {
		return err
	}
	pts, err := sched.ParetoFront(in)
	if err != nil {
		return err
	}
	fmt.Printf("exact Pareto front: %d point(s)\n", len(pts))
	for i, p := range pts {
		fmt.Printf("\n-- point %d: Cmax=%d Mmax=%d --\n", i+1, p.Value.Cmax, p.Value.Mmax)
		if err := sched.RenderAssignment(os.Stdout, in, p.Assignment, sched.GanttOptions{Width: width, ShowMemory: true}); err != nil {
			return err
		}
	}
	return nil
}
